package align

// DistanceSemiGlobal returns the minimum edit distance between the pattern
// and any infix of the text — Edlib's HW mode, where gaps before and after
// the pattern's placement in the text are free. It runs the blocked Myers
// algorithm with a zero first row (hin = 0) and tracks the minimum of the
// last DP row across columns. mrFAST-style verification against an extended
// window (read length + 2e) uses exactly this mode.
func DistanceSemiGlobal(pattern, text []byte) int {
	m, n := len(pattern), len(text)
	if m == 0 {
		return 0
	}
	if n == 0 {
		return m
	}
	blocks := (m + wordBits - 1) / wordBits
	peq := buildPeq(pattern, blocks)
	zero := make([]uint64, blocks)

	pv := make([]uint64, blocks)
	mv := make([]uint64, blocks)
	for i := range pv {
		pv[i] = ^uint64(0)
	}
	lastBit := uint((m - 1) % wordBits)
	score := m
	best := m
	for j := 0; j < n; j++ {
		eqAll := peq[text[j]]
		if eqAll == nil {
			eqAll = zero
		}
		hin := 0 // HW mode: the first DP row is all zeros
		for blk := 0; blk < blocks; blk++ {
			var hout int
			pv[blk], mv[blk], hout = advanceBlock(pv[blk], mv[blk], eqAll[blk], hin,
				blk == blocks-1, lastBit)
			hin = hout
		}
		score += hin
		if score < best {
			best = score
		}
	}
	return best
}

// DistancePrefix returns the minimum edit distance between the pattern and
// any prefix of the text — Edlib's SHW mode, where only the gap after the
// pattern is free.
func DistancePrefix(pattern, text []byte) int {
	m, n := len(pattern), len(text)
	if m == 0 {
		return 0
	}
	if n == 0 {
		return m
	}
	blocks := (m + wordBits - 1) / wordBits
	peq := buildPeq(pattern, blocks)
	zero := make([]uint64, blocks)

	pv := make([]uint64, blocks)
	mv := make([]uint64, blocks)
	for i := range pv {
		pv[i] = ^uint64(0)
	}
	lastBit := uint((m - 1) % wordBits)
	score := m
	best := m
	for j := 0; j < n; j++ {
		eqAll := peq[text[j]]
		if eqAll == nil {
			eqAll = zero
		}
		hin := 1 // SHW mode: leading text must be consumed (first row 0..n)
		for blk := 0; blk < blocks; blk++ {
			var hout int
			pv[blk], mv[blk], hout = advanceBlock(pv[blk], mv[blk], eqAll[blk], hin,
				blk == blocks-1, lastBit)
			hin = hout
		}
		score += hin
		if score < best {
			best = score
		}
	}
	return best
}

// refSemiGlobalDP is the quadratic reference for DistanceSemiGlobal,
// exported to the tests via the package (kept here so the mode definitions
// sit next to their oracle).
func refSemiGlobalDP(pattern, text []byte, freeStart bool) int {
	m, n := len(pattern), len(text)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		if freeStart {
			prev[j] = 0
		} else {
			prev[j] = j
		}
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if pattern[i-1] == text[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if prev[j]+1 < best {
				best = prev[j] + 1
			}
			if cur[j-1]+1 < best {
				best = cur[j-1] + 1
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := prev[0]
	for j := 1; j <= n; j++ {
		if prev[j] < best {
			best = prev[j]
		}
	}
	return best
}
