package align

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
)

func TestAlignExactMatch(t *testing.T) {
	a := []byte("ACGTACGT")
	al, ok := Align(a, a, 2)
	if !ok || al.Distance != 0 {
		t.Fatalf("exact: %+v ok=%v", al, ok)
	}
	if al.CIGAR() != "8=" {
		t.Fatalf("CIGAR = %s", al.CIGAR())
	}
	if al.CIGARCompat() != "8M" {
		t.Fatalf("CIGARCompat = %s", al.CIGARCompat())
	}
}

func TestAlignKnownCases(t *testing.T) {
	cases := []struct {
		a, b  string
		dist  int
		cigar string
	}{
		{"ACGT", "AGGT", 1, "1=1X2="},
		{"ACGT", "AGT", 1, "1=1I2="},
		{"AGT", "ACGT", 1, "1=1D2="},
		{"ACGT", "ACGTT", 1, "3=1D1="}, // ties may resolve to any optimal path
		{"ACGTT", "ACGT", 1, "3=1I1="},
	}
	for _, c := range cases {
		al, ok := Align([]byte(c.a), []byte(c.b), 3)
		if !ok {
			t.Fatalf("Align(%q,%q) failed", c.a, c.b)
		}
		if al.Distance != c.dist {
			t.Errorf("Align(%q,%q) distance %d, want %d", c.a, c.b, al.Distance, c.dist)
		}
		if got := al.CIGAR(); got != c.cigar {
			t.Errorf("Align(%q,%q) CIGAR %s, want %s", c.a, c.b, got, c.cigar)
		}
	}
}

func TestAlignDistanceAgreesWithDP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 20 + rng.Intn(120)
		a := dna.RandomSeq(rng, n)
		b := dna.ApplyEdits(a, dna.RandomEdits(rng, n, rng.Intn(8), 0.5))
		want := DistanceDP(a, b)
		maxDist := 10
		al, ok := Align(a, b, maxDist)
		if want <= maxDist {
			if !ok || al.Distance != want {
				t.Fatalf("trial %d: Align=(%d,%v), DP=%d", trial, al.Distance, ok, want)
			}
		} else if ok {
			t.Fatalf("trial %d: Align accepted distance %d beyond budget", trial, al.Distance)
		}
	}
}

func TestAlignOpsReconstructSequences(t *testing.T) {
	// Replaying the traceback ops over the read must consume exactly the
	// read and the reference, and the op classes must match reality.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 30 + rng.Intn(100)
		a := dna.RandomSeq(rng, n)
		b := dna.ApplyEdits(a, dna.RandomEdits(rng, n, rng.Intn(6), 0.6))
		al, ok := Align(a, b, 8)
		if !ok {
			continue
		}
		ai, bi, edits := 0, 0, 0
		for _, op := range al.Ops {
			switch op {
			case OpMatch, OpMismatch:
				if a[ai] == b[bi] != (op == OpMatch) {
					t.Fatalf("trial %d: op %c misclassifies a[%d]=%c vs b[%d]=%c",
						trial, op, ai, a[ai], bi, b[bi])
				}
				if op == OpMismatch {
					edits++
				}
				ai++
				bi++
			case OpIns:
				ai++
				edits++
			case OpDel:
				bi++
				edits++
			default:
				t.Fatalf("unknown op %c", op)
			}
		}
		if ai != len(a) || bi != len(b) {
			t.Fatalf("trial %d: ops consumed %d/%d read and %d/%d ref", trial, ai, len(a), bi, len(b))
		}
		if edits != al.Distance {
			t.Fatalf("trial %d: ops imply %d edits, distance says %d", trial, edits, al.Distance)
		}
	}
}

func TestAlignRejections(t *testing.T) {
	if _, ok := Align([]byte("AAAA"), []byte("TTTT"), 2); ok {
		t.Fatal("4 mismatches accepted with budget 2")
	}
	if _, ok := Align([]byte("AAAAAAA"), []byte("A"), 3); ok {
		t.Fatal("length gap beyond band accepted")
	}
	if _, ok := Align([]byte("ACGT"), []byte("ACGT"), -1); ok {
		t.Fatal("negative budget accepted")
	}
}

func TestAlignEmptyInputs(t *testing.T) {
	al, ok := Align(nil, []byte("ACG"), 3)
	if !ok || al.Distance != 3 || al.CIGAR() != "3D" {
		t.Fatalf("empty read: %+v ok=%v", al, ok)
	}
	al, ok = Align([]byte("ACG"), nil, 3)
	if !ok || al.Distance != 3 || al.CIGAR() != "3I" {
		t.Fatalf("empty ref: %+v ok=%v", al, ok)
	}
	al, ok = Align(nil, nil, 0)
	if !ok || al.Distance != 0 || al.CIGAR() != "*" {
		t.Fatalf("empty both: %+v ok=%v", al, ok)
	}
}
