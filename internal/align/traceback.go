package align

import (
	"fmt"
	"strings"
)

// Op is one alignment operation in CIGAR vocabulary.
type Op byte

// Alignment operations ('=' match, 'X' mismatch, 'I' insertion into the
// read, 'D' deletion from the read).
const (
	OpMatch    Op = '='
	OpMismatch Op = 'X'
	OpIns      Op = 'I'
	OpDel      Op = 'D'
)

// Alignment is the result of a global alignment with traceback.
type Alignment struct {
	Distance int
	Ops      []Op // one entry per alignment column, read-major order
}

// CIGAR renders the operations run-length encoded, extended style
// (=/X/I/D). Use CIGARCompat for the classic M-style string.
func (a Alignment) CIGAR() string {
	return renderCigar(a.Ops, func(op Op) byte { return byte(op) })
}

// CIGARCompat renders the classic SAM CIGAR where matches and mismatches
// both appear as 'M'.
func (a Alignment) CIGARCompat() string {
	return renderCigar(a.Ops, func(op Op) byte {
		if op == OpMatch || op == OpMismatch {
			return 'M'
		}
		return byte(op)
	})
}

func renderCigar(ops []Op, classify func(Op) byte) string {
	if len(ops) == 0 {
		return "*"
	}
	var sb strings.Builder
	runClass := classify(ops[0])
	runLen := 1
	for _, op := range ops[1:] {
		c := classify(op)
		if c == runClass {
			runLen++
			continue
		}
		fmt.Fprintf(&sb, "%d%c", runLen, runClass)
		runClass, runLen = c, 1
	}
	fmt.Fprintf(&sb, "%d%c", runLen, runClass)
	return sb.String()
}

// Align computes a global alignment of a (the read) against b within a
// banded edit-distance budget, returning the distance and traceback. It
// returns ok=false when the distance exceeds maxDist. The full DP band is
// materialized for traceback, so memory is O((2·maxDist+1)·len(a)).
func Align(a, b []byte, maxDist int) (Alignment, bool) {
	m, n := len(a), len(b)
	if maxDist < 0 || abs(m-n) > maxDist {
		return Alignment{}, false
	}
	const inf = int(^uint(0) >> 2)
	width := 2*maxDist + 1
	// rows[i][k] is D[i][j] with j = i + k - maxDist.
	rows := make([][]int, m+1)
	for i := range rows {
		rows[i] = make([]int, width)
		for k := range rows[i] {
			rows[i][k] = inf
		}
	}
	for k := 0; k < width; k++ {
		if j := k - maxDist; j >= 0 && j <= n && j <= maxDist {
			rows[0][k] = j
		}
	}
	for i := 1; i <= m; i++ {
		rowMin := inf
		for k := 0; k < width; k++ {
			j := i + k - maxDist
			if j < 0 || j > n {
				continue
			}
			best := inf
			if j == 0 {
				best = i
			} else {
				if rows[i-1][k] != inf {
					cost := 1
					if a[i-1] == b[j-1] {
						cost = 0
					}
					best = rows[i-1][k] + cost
				}
				if k+1 < width && rows[i-1][k+1] != inf && rows[i-1][k+1]+1 < best {
					best = rows[i-1][k+1] + 1
				}
				if k-1 >= 0 && rows[i][k-1] != inf && rows[i][k-1]+1 < best {
					best = rows[i][k-1] + 1
				}
			}
			rows[i][k] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > maxDist {
			return Alignment{}, false
		}
	}
	endK := n - m + maxDist
	if endK < 0 || endK >= width || rows[m][endK] > maxDist {
		return Alignment{}, false
	}

	// Traceback from (m, n).
	var ops []Op
	i, k := m, endK
	for {
		j := i + k - maxDist
		if i == 0 && j == 0 {
			break
		}
		cur := rows[i][k]
		switch {
		case i > 0 && j > 0 && rows[i-1][k] != inf &&
			((a[i-1] == b[j-1] && rows[i-1][k] == cur) ||
				(a[i-1] != b[j-1] && rows[i-1][k]+1 == cur)):
			if a[i-1] == b[j-1] {
				ops = append(ops, OpMatch)
			} else {
				ops = append(ops, OpMismatch)
			}
			i--
		case i > 0 && k+1 < width && rows[i-1][k+1] != inf && rows[i-1][k+1]+1 == cur:
			// Consumed a read base without a reference base.
			ops = append(ops, OpIns)
			i--
			k++
		case j > 0 && k-1 >= 0 && rows[i][k-1] != inf && rows[i][k-1]+1 == cur:
			ops = append(ops, OpDel)
			k--
		case j == 0:
			ops = append(ops, OpIns)
			i--
			k++
		default:
			// Unreachable when the DP is consistent.
			return Alignment{}, false
		}
	}
	// Reverse into read-major order.
	for lo, hi := 0, len(ops)-1; lo < hi; lo, hi = lo+1, hi-1 {
		ops[lo], ops[hi] = ops[hi], ops[lo]
	}
	return Alignment{Distance: rows[m][endK], Ops: ops}, true
}
