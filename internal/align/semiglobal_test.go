package align

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
)

func TestDistanceSemiGlobalKnown(t *testing.T) {
	cases := []struct {
		pattern, text string
		want          int
	}{
		{"ACGT", "TTTACGTTTT", 0}, // exact infix
		{"ACGT", "TTTACCTTTT", 1},
		{"ACGT", "ACGT", 0},
		{"ACGT", "TTTT", 3}, // best infix shares the final T
		{"AAAA", "CCCC", 4},
		{"", "ACGT", 0},
		{"ACGT", "", 4},
	}
	for _, c := range cases {
		if got := DistanceSemiGlobal([]byte(c.pattern), []byte(c.text)); got != c.want {
			t.Errorf("SemiGlobal(%q,%q) = %d, want %d", c.pattern, c.text, got, c.want)
		}
	}
}

func TestDistanceSemiGlobalAgainstDP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(150)
		n := 1 + rng.Intn(250)
		pattern := dna.RandomSeq(rng, m)
		text := dna.RandomSeq(rng, n)
		if trial%2 == 0 && n > m {
			// Plant the pattern so both regimes are exercised.
			pos := rng.Intn(n - m)
			copy(text[pos:], dna.MutateSubstitutions(rng, pattern, rng.Intn(4)))
		}
		want := refSemiGlobalDP(pattern, text, true)
		if got := DistanceSemiGlobal(pattern, text); got != want {
			t.Fatalf("trial %d (m=%d n=%d): SemiGlobal=%d, DP=%d", trial, m, n, got, want)
		}
	}
}

func TestDistancePrefixAgainstDP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(150)
		n := 1 + rng.Intn(250)
		pattern := dna.RandomSeq(rng, m)
		text := dna.RandomSeq(rng, n)
		if trial%2 == 0 && n > m {
			copy(text, dna.MutateSubstitutions(rng, pattern, rng.Intn(4)))
		}
		want := refSemiGlobalDP(pattern, text, false)
		if got := DistancePrefix(pattern, text); got != want {
			t.Fatalf("trial %d (m=%d n=%d): Prefix=%d, DP=%d", trial, m, n, got, want)
		}
	}
}

func TestModeOrdering(t *testing.T) {
	// HW <= SHW <= NW for any inputs: each mode frees strictly more gaps.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		pattern := dna.RandomSeq(rng, 1+rng.Intn(100))
		text := dna.RandomSeq(rng, 1+rng.Intn(150))
		hw := DistanceSemiGlobal(pattern, text)
		shw := DistancePrefix(pattern, text)
		nw := Distance(pattern, text)
		if hw > shw || shw > nw {
			t.Fatalf("mode ordering violated: HW=%d SHW=%d NW=%d", hw, shw, nw)
		}
	}
}

func TestSemiGlobalExtendedWindowVerification(t *testing.T) {
	// The mrFAST-style use: verify a read against a window extended by e on
	// both sides; an indel-shifted read still verifies at its true site.
	rng := rand.New(rand.NewSource(4))
	genome := dna.RandomSeq(rng, 10_000)
	for trial := 0; trial < 50; trial++ {
		pos := 100 + rng.Intn(9_000)
		read := append([]byte(nil), genome[pos:pos+100]...)
		read = dna.ApplyEdits(read, dna.RandomEdits(rng, 100, 3, 0.8))
		if len(read) > 100 {
			read = read[:100]
		}
		window := genome[pos-5 : pos+105]
		if d := DistanceSemiGlobal(read, window); d > 4 {
			t.Fatalf("trial %d: semi-global distance %d at the true site", trial, d)
		}
	}
}
