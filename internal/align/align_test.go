package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

func TestDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "ACGT", 4},
		{"ACGT", "", 4},
		{"ACGT", "ACGT", 0},
		{"ACGT", "ACGA", 1},
		{"ACGT", "AGT", 1},   // deletion
		{"ACGT", "ACCGT", 1}, // insertion
		{"KITTEN", "SITTING", 3},
		{"AAAA", "TTTT", 4},
		{"GATTACA", "GCATGCU", 4},
		{"ACGTACGTACGT", "ACGTACGTACGT", 0},
	}
	for _, c := range cases {
		if got := Distance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := DistanceDP([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("DistanceDP(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := dna.RandomSeq(rng, 10+rng.Intn(200))
		b := dna.RandomSeq(rng, 10+rng.Intn(200))
		if Distance(a, b) != Distance(b, a) {
			t.Fatalf("asymmetric distance for %q vs %q", a, b)
		}
	}
}

func TestDistanceMatchesDPRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(300)
		a := dna.RandomSeq(rng, n)
		k := rng.Intn(20)
		edits := dna.RandomEdits(rng, n, k, 0.4)
		b := dna.ApplyEdits(a, edits)
		want := DistanceDP(a, b)
		if got := Distance(a, b); got != want {
			t.Fatalf("Distance=%d DP=%d for case %d (n=%d k=%d)", got, want, i, n, k)
		}
	}
}

func TestDistanceLongSequences(t *testing.T) {
	// Exercise the multi-block path: >64, >128, >192 pattern rows.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{64, 65, 100, 128, 129, 150, 250, 300, 301} {
		a := dna.RandomSeq(rng, n)
		b := dna.MutateSubstitutions(rng, a, 5)
		if got, want := Distance(a, b), DistanceDP(a, b); got != want {
			t.Fatalf("n=%d: Distance=%d, DP=%d", n, got, want)
		}
	}
}

func TestDistanceUnequalLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		a := dna.RandomSeq(rng, 1+rng.Intn(120))
		b := dna.RandomSeq(rng, 1+rng.Intn(120))
		if got, want := Distance(a, b), DistanceDP(a, b); got != want {
			t.Fatalf("unequal lengths |a|=%d |b|=%d: Distance=%d, DP=%d", len(a), len(b), got, want)
		}
	}
}

func TestDistanceSubstitutionsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := dna.RandomSeq(rng, 100)
	for k := 0; k <= 10; k++ {
		b := dna.MutateSubstitutions(rng, a, k)
		if got := Distance(a, b); got > k {
			t.Fatalf("distance %d exceeds substitution count %d", got, k)
		}
	}
}

func TestDistanceTriangleQuick(t *testing.T) {
	f := func(ra, rb, rc []byte) bool {
		a := clampSeq(ra, 80)
		b := clampSeq(rb, 80)
		c := clampSeq(rc, 80)
		ab := Distance(a, b)
		bc := Distance(b, c)
		ac := Distance(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func clampSeq(raw []byte, maxLen int) []byte {
	n := len(raw)
	if n > maxLen {
		n = maxLen
	}
	seq := make([]byte, n)
	for i := 0; i < n; i++ {
		seq[i] = dna.Alphabet[int(raw[i])%4]
	}
	return seq
}

func TestDistanceBandedAgreesWithDP(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(150)
		a := dna.RandomSeq(rng, n)
		b := dna.ApplyEdits(a, dna.RandomEdits(rng, n, rng.Intn(12), 0.5))
		maxDist := rng.Intn(15)
		want := DistanceDP(a, b)
		got, ok := DistanceBanded(a, b, maxDist)
		if want <= maxDist {
			if !ok || got != want {
				t.Fatalf("banded=(%d,%v), want (%d,true); maxDist=%d", got, ok, want, maxDist)
			}
		} else if ok {
			t.Fatalf("banded accepted distance %d with maxDist=%d (true distance %d)", got, maxDist, want)
		}
	}
}

func TestDistanceBandedEdgeCases(t *testing.T) {
	if _, ok := DistanceBanded([]byte("ACGT"), []byte("ACGT"), -1); ok {
		t.Fatal("negative budget accepted")
	}
	if d, ok := DistanceBanded(nil, []byte("AC"), 2); !ok || d != 2 {
		t.Fatalf("empty a: (%d,%v)", d, ok)
	}
	if d, ok := DistanceBanded([]byte("AC"), nil, 2); !ok || d != 2 {
		t.Fatalf("empty b: (%d,%v)", d, ok)
	}
	if _, ok := DistanceBanded([]byte("AAAAAAAA"), []byte("A"), 3); ok {
		t.Fatal("length gap beyond band accepted")
	}
	if d, ok := DistanceBanded([]byte("ACGT"), []byte("ACGT"), 0); !ok || d != 0 {
		t.Fatalf("exact match with zero budget: (%d,%v)", d, ok)
	}
	if _, ok := DistanceBanded([]byte("ACGT"), []byte("ACGA"), 0); ok {
		t.Fatal("mismatch accepted with zero budget")
	}
}

func TestDistanceBandedEarlyExit(t *testing.T) {
	// Completely dissimilar sequences must be rejected, exercising the
	// row-minimum early exit.
	a := make([]byte, 200)
	b := make([]byte, 200)
	for i := range a {
		a[i], b[i] = 'A', 'T'
	}
	if _, ok := DistanceBanded(a, b, 10); ok {
		t.Fatal("banded accepted 200 mismatches with budget 10")
	}
}

func TestHammingDistance(t *testing.T) {
	if d := HammingDistance([]byte("ACGT"), []byte("ACGA")); d != 1 {
		t.Fatalf("HammingDistance = %d", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unequal lengths")
		}
	}()
	HammingDistance([]byte("A"), []byte("AB"))
}

func TestDistanceNHandling(t *testing.T) {
	// 'N' is an ordinary symbol for the ground truth: N==N matches, N!=A.
	if d := Distance([]byte("ACNT"), []byte("ACNT")); d != 0 {
		t.Fatalf("N should match N: %d", d)
	}
	if d := Distance([]byte("ACNT"), []byte("ACAT")); d != 1 {
		t.Fatalf("N vs A should cost 1: %d", d)
	}
}

func BenchmarkDistance100bp(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := dna.RandomSeq(rng, 100)
	y := dna.MutateSubstitutions(rng, x, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkDistanceBanded100bp(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := dna.RandomSeq(rng, 100)
	y := dna.MutateSubstitutions(rng, x, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceBanded(x, y, 5)
	}
}
