package gatekeeper_test

import (
	"fmt"

	gatekeeper "repro"
)

// ExampleNewKernel demonstrates single-pair filtering with the improved
// GateKeeper algorithm: a pair within the threshold passes, a dissimilar
// pair is rejected before any expensive alignment.
func ExampleNewKernel() {
	kern := gatekeeper.NewKernel(gatekeeper.ModeGPU, 32, 3)

	read := []byte("ACGTACGTACGTACGTACGTACGTACGTACGT")
	similar := []byte("ACGTACGTACGTAAGTACGTACGTACGTACGT")    // one substitution
	dissimilar := []byte("TTGCAGTCAAGGCCTTAACCGGTTAAGGCAAT") // unrelated

	d1 := kern.Filter(read, similar, 3)
	d2 := kern.Filter(read, dissimilar, 3)
	fmt.Printf("similar: accept=%v estimate=%d\n", d1.Accept, d1.Estimate)
	fmt.Printf("dissimilar: accept=%v\n", d2.Accept)
	// Output:
	// similar: accept=true estimate=1
	// dissimilar: accept=false
}

// ExampleNewKernel_undefined shows the paper's undefined-pair rule: pairs
// containing unknown base calls bypass filtration and go straight to
// verification.
func ExampleNewKernel_undefined() {
	kern := gatekeeper.NewKernel(gatekeeper.ModeGPU, 16, 2)
	read := []byte("ACGTACGTACGTACGT")
	withN := []byte("ACGTACGNACGTACGT")
	d := kern.Filter(read, withN, 2)
	fmt.Printf("accept=%v undefined=%v\n", d.Accept, d.Undefined)
	// Output:
	// accept=true undefined=true
}

// ExampleEditDistance shows the exact ground truth every accuracy
// experiment measures filters against.
func ExampleEditDistance() {
	fmt.Println(gatekeeper.EditDistance([]byte("GATTACA"), []byte("GATTAGA")))
	fmt.Println(gatekeeper.EditDistance([]byte("GATTACA"), []byte("GTTACA")))
	// Output:
	// 1
	// 1
}

// ExampleNewEngine shows batched filtering through the simulated
// GateKeeper-GPU engine.
func ExampleNewEngine() {
	eng, err := gatekeeper.NewEngine(gatekeeper.EngineConfig{
		ReadLen: 16,
		MaxE:    2,
	}, 1, gatekeeper.GTX1080Ti())
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	read := []byte("ACGTACGTACGTACGT")
	pairs := []gatekeeper.Pair{
		{Read: read, Ref: []byte("ACGTACGTACGTACGT")}, // exact
		{Read: read, Ref: []byte("TGCATGCATGCATGCA")}, // dissimilar
	}
	results, err := eng.FilterPairs(pairs, 2)
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("pair %d: accept=%v\n", i, r.Accept)
	}
	fmt.Printf("rejected %d of %d\n", eng.Stats().Rejected, eng.Stats().Pairs)
	// Output:
	// pair 0: accept=true
	// pair 1: accept=false
	// rejected 1 of 2
}
