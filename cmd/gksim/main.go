// Command gksim synthesizes evaluation data: reference genomes (FASTA),
// Mason-like read sets (FASTQ), and read/candidate pair files (TSV) from
// the paper's dataset profiles.
//
// Usage:
//
//	gksim -mode genome -length 1000000 -out ref.fa
//	gksim -mode reads -length 500000 -n 10000 -profile illumina100 -out reads.fq
//	gksim -mode paired-reads -length 500000 -n 5000 -insert-mean 400 -out r1.fq -out2 r2.fq
//	gksim -mode pairs -set set3 -n 30000 -out pairs.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dna"
	"repro/internal/simdata"
)

func main() {
	var (
		mode    = flag.String("mode", "pairs", "what to generate: genome, reads, paired-reads, or pairs")
		length  = flag.Int("length", 1_000_000, "genome length (genome/reads modes)")
		n       = flag.Int("n", 10_000, "number of reads or pairs")
		profile = flag.String("profile", "illumina100", "read profile: illumina50, illumina100, illumina250, simset1, simset2")
		setName = flag.String("set", "set3", "pair-set profile (pairs mode)")
		out     = flag.String("out", "", "output path (default stdout)")
		out2    = flag.String("out2", "", "mate output path (paired-reads mode, required)")
		insMean = flag.Int("insert-mean", 400, "mean fragment length (paired-reads mode)")
		insStd  = flag.Int("insert-std", 40, "fragment length std dev (paired-reads mode)")
		seed    = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		w = fh
	}

	switch *mode {
	case "genome":
		cfg := simdata.DefaultGenomeConfig(*length)
		cfg.Seed = *seed
		g := simdata.Genome(cfg)
		if err := dna.WriteFASTA(w, []dna.Record{{Name: "chrSim", Seq: g}}); err != nil {
			fatal(err)
		}
	case "reads":
		rp, err := readProfile(*profile)
		if err != nil {
			fatal(err)
		}
		cfg := simdata.DefaultGenomeConfig(*length)
		cfg.Seed = *seed
		g := simdata.Genome(cfg)
		reads, err := simdata.SimulateReads(g, rp, *n, *seed+1)
		if err != nil {
			fatal(err)
		}
		recs := make([]dna.Record, len(reads))
		for i, r := range reads {
			recs[i] = dna.Record{Name: fmt.Sprintf("read%d pos=%d", i, r.TruePos), Seq: r.Seq}
		}
		if err := dna.WriteFASTQ(w, recs); err != nil {
			fatal(err)
		}
	case "paired-reads":
		// Two FASTQ files (R1/R2, as sequenced: R2 reverse-complement
		// oriented) from one simulated FR library — the input shape
		// `gkmap -paired -reads-file r1.fq -reads2 r2.fq` consumes.
		if *out2 == "" {
			fatal(fmt.Errorf("paired-reads mode needs -out2 for the mate file"))
		}
		rp, err := readProfile(*profile)
		if err != nil {
			fatal(err)
		}
		cfg := simdata.DefaultGenomeConfig(*length)
		cfg.Seed = *seed
		g := simdata.Genome(cfg)
		simPairs, err := simdata.SimulatePairs(g, rp, *n, *insMean, *insStd, *seed+1)
		if err != nil {
			fatal(err)
		}
		r1 := make([]dna.Record, len(simPairs))
		r2 := make([]dna.Record, len(simPairs))
		for i, p := range simPairs {
			r1[i] = dna.Record{Name: fmt.Sprintf("pair%d/1 pos=%d", i, p.R1.TruePos), Seq: p.R1.Seq}
			r2[i] = dna.Record{Name: fmt.Sprintf("pair%d/2 pos=%d", i, p.R2.TruePos), Seq: p.R2.Seq}
		}
		if err := dna.WriteFASTQ(w, r1); err != nil {
			fatal(err)
		}
		fh2, err := os.Create(*out2)
		if err != nil {
			fatal(err)
		}
		defer fh2.Close()
		if err := dna.WriteFASTQ(fh2, r2); err != nil {
			fatal(err)
		}
	case "pairs":
		p, err := simdata.Set(*setName)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "# %s, %d pairs, seed %d\n", p.Name, *n, *seed)
		for _, pc := range simdata.Generate(p, *seed, *n) {
			fmt.Fprintf(bw, "%s\t%s\n", pc.Read, pc.Ref)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func readProfile(name string) (simdata.ReadProfile, error) {
	switch name {
	case "illumina50":
		return simdata.Illumina50, nil
	case "illumina100":
		return simdata.Illumina100, nil
	case "illumina250":
		return simdata.Illumina250, nil
	case "simset1":
		return simdata.SimSet1, nil
	case "simset2":
		return simdata.SimSet2, nil
	default:
		return simdata.ReadProfile{}, fmt.Errorf("unknown read profile %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gksim: %v\n", err)
	os.Exit(1)
}
