// Command gksim synthesizes evaluation data: reference genomes (FASTA),
// Mason-like read sets (FASTQ), and read/candidate pair files (TSV) from
// the paper's dataset profiles.
//
// Usage:
//
//	gksim -mode genome -length 1000000 -out ref.fa
//	gksim -mode genome -length 300000 -contigs 3 -out genome.fa
//	gksim -mode reads -length 500000 -n 10000 -profile illumina100 -out reads.fq
//	gksim -mode reads -ref genome.fa -n 10000 -out reads.fq
//	gksim -mode paired-reads -length 500000 -n 5000 -insert-mean 400 -out r1.fq -out2 r2.fq
//	gksim -mode pairs -set set3 -n 30000 -out pairs.tsv
//
// genome mode emits chr1..chrN when -contigs > 1; reads and paired-reads
// modes accept -ref to draw reads from an existing (possibly multi-contig)
// FASTA instead of simulating a fresh genome — reads are sampled per
// contig, proportional to contig length, and never straddle a boundary.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dna"
	"repro/internal/simdata"
)

func main() {
	var (
		mode    = flag.String("mode", "pairs", "what to generate: genome, reads, paired-reads, or pairs")
		length  = flag.Int("length", 1_000_000, "genome length (genome/reads modes)")
		contigs = flag.Int("contigs", 1, "contig count for genome mode (chr1..chrN splitting -length)")
		refFile = flag.String("ref", "", "draw reads from this FASTA instead of simulating a genome (reads/paired-reads modes)")
		n       = flag.Int("n", 10_000, "number of reads or pairs")
		profile = flag.String("profile", "illumina100", "read profile: illumina50, illumina100, illumina250, simset1, simset2")
		setName = flag.String("set", "set3", "pair-set profile (pairs mode)")
		out     = flag.String("out", "", "output path (default stdout)")
		out2    = flag.String("out2", "", "mate output path (paired-reads mode, required)")
		insMean = flag.Int("insert-mean", 400, "mean fragment length (paired-reads mode)")
		insStd  = flag.Int("insert-std", 40, "fragment length std dev (paired-reads mode)")
		seed    = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			// A written artifact: close errors are the last chance to hear
			// about a failed flush.
			if err := fh.Close(); err != nil {
				fatal(err)
			}
		}()
		w = fh
	}

	switch *mode {
	case "genome":
		// One record per contig, chr1..chrN, each an independently seeded
		// simulated sequence splitting -length evenly — the multi-contig
		// reference shape gkmap's file mode consumes. -contigs 1 keeps the
		// historical single "chrSim" record. Contigs stream straight to the
		// output (simdata.StreamGenome chunks into dna.FASTAWriter), so
		// emitting a multi-gigabase reference for the genome-scale
		// experiments costs constant memory instead of OOMing on
		// materialized contigs.
		if *contigs < 1 {
			fatal(fmt.Errorf("-contigs %d", *contigs))
		}
		per := *length / *contigs
		if per < 1 {
			fatal(fmt.Errorf("-length %d too small for %d contigs", *length, *contigs))
		}
		fw := dna.NewFASTAWriter(w)
		for i := 0; i < *contigs; i++ {
			cfg := simdata.DefaultGenomeConfig(per)
			cfg.Seed = *seed + int64(i)
			name, desc := fmt.Sprintf("chr%d", i+1), fmt.Sprintf("simulated contig %d/%d", i+1, *contigs)
			if *contigs == 1 {
				name, desc = "chrSim", ""
			}
			if err := fw.Begin(name, desc); err != nil {
				fatal(err)
			}
			if err := simdata.StreamGenome(cfg, fw.Append); err != nil {
				fatal(err)
			}
		}
		if err := fw.Flush(); err != nil {
			fatal(err)
		}
	case "reads":
		rp, err := readProfile(*profile)
		if err != nil {
			fatal(err)
		}
		var recs []dna.Record
		idx := 0
		for _, src := range readSources(*refFile, *length, *seed, *n, rp.Length+1) {
			reads, err := simdata.SimulateReads(src.seq, rp, src.n, *seed+1+src.ord)
			if err != nil {
				fatal(err)
			}
			for _, r := range reads {
				recs = append(recs, dna.Record{
					Name: fmt.Sprintf("read%d %spos=%d", idx, src.chrTag, r.TruePos),
					Seq:  r.Seq,
				})
				idx++
			}
		}
		if err := dna.WriteFASTQ(w, recs); err != nil {
			fatal(err)
		}
	case "paired-reads":
		// Two FASTQ files (R1/R2, as sequenced: R2 reverse-complement
		// oriented) from one simulated FR library — the input shape
		// `gkmap -paired -reads-file r1.fq -reads2 r2.fq` consumes.
		if *out2 == "" {
			fatal(fmt.Errorf("paired-reads mode needs -out2 for the mate file"))
		}
		rp, err := readProfile(*profile)
		if err != nil {
			fatal(err)
		}
		var r1, r2 []dna.Record
		idx := 0
		for _, src := range readSources(*refFile, *length, *seed, *n, rp.Length+1) {
			simPairs, err := simdata.SimulatePairs(src.seq, rp, src.n, *insMean, *insStd, *seed+1+src.ord)
			if err != nil {
				fatal(err)
			}
			for _, p := range simPairs {
				r1 = append(r1, dna.Record{
					Name: fmt.Sprintf("pair%d/1 %spos=%d", idx, src.chrTag, p.R1.TruePos),
					Seq:  p.R1.Seq,
				})
				r2 = append(r2, dna.Record{
					Name: fmt.Sprintf("pair%d/2 %spos=%d", idx, src.chrTag, p.R2.TruePos),
					Seq:  p.R2.Seq,
				})
				idx++
			}
		}
		if err := dna.WriteFASTQ(w, r1); err != nil {
			fatal(err)
		}
		fh2, err := os.Create(*out2)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := fh2.Close(); err != nil {
				fatal(err)
			}
		}()
		if err := dna.WriteFASTQ(fh2, r2); err != nil {
			fatal(err)
		}
	case "pairs":
		p, err := simdata.Set(*setName)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "# %s, %d pairs, seed %d\n", p.Name, *n, *seed)
		for _, pc := range simdata.Generate(p, *seed, *n) {
			fmt.Fprintf(bw, "%s\t%s\n", pc.Read, pc.Ref)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// readSource is one sequence reads are sampled from: the lone simulated
// genome historically, or one contig of a -ref FASTA.
type readSource struct {
	seq    []byte
	n      int    // reads (or pairs) to draw from this source
	ord    int64  // source ordinal, offsets the per-source seed
	chrTag string // "chr=<name> " for -ref contigs, "" otherwise
}

// readSources resolves where reads come from. Without -ref, one simulated
// genome of the given length (the historical behavior, read names
// unchanged). With -ref, each FASTA contig long enough to hold a read
// (minLen bases; shorter scaffolds are skipped with a note) is a source
// and exactly n reads are split proportionally to contig length; when n
// allows (n >= usable contigs) every contig contributes at least one read,
// funded by trimming the largest allocations, so -n is always honored and
// no simulated read ever straddles a contig boundary.
func readSources(refFile string, length int, seed int64, n, minLen int) []readSource {
	if refFile == "" {
		cfg := simdata.DefaultGenomeConfig(length)
		cfg.Seed = seed
		return []readSource{{seq: simdata.Genome(cfg), n: n}}
	}
	f, err := os.Open(refFile)
	if err != nil {
		fatal(err)
	}
	defer func() { _ = f.Close() }() //gk:allow errcheck: read-only input; read errors surface via ReadFASTA
	recs, err := dna.ReadFASTA(f)
	if err != nil {
		fatal(err)
	}
	total := 0
	usable := recs[:0]
	for _, rec := range recs {
		if len(rec.Seq) < minLen {
			fmt.Fprintf(os.Stderr, "gksim: skipping contig %s (%d bases, too short to sample a %d-base read)\n",
				rec.Name, len(rec.Seq), minLen-1)
			continue
		}
		usable = append(usable, rec)
		total += len(rec.Seq)
	}
	if len(usable) == 0 {
		fatal(fmt.Errorf("%s has no contig of at least %d bases", refFile, minLen))
	}
	var sources []readSource
	assigned := 0
	for i, rec := range usable {
		ni := n * len(rec.Seq) / total
		assigned += ni
		sources = append(sources, readSource{
			seq:    rec.Seq,
			n:      ni,
			ord:    int64(i),
			chrTag: fmt.Sprintf("chr=%s ", rec.Name),
		})
	}
	// The proportional floors leave a rounding remainder; it lands on the
	// last contig, so the total is exactly n.
	sources[len(sources)-1].n += n - assigned
	// When n allows, every contig contributes at least one read — funded by
	// the largest allocation, so the total stays exactly n.
	if n >= len(sources) {
		for i := range sources {
			if sources[i].n > 0 {
				continue
			}
			big := 0
			for j := range sources {
				if sources[j].n > sources[big].n {
					big = j
				}
			}
			sources[big].n--
			sources[i].n++
		}
	}
	return sources
}

func readProfile(name string) (simdata.ReadProfile, error) {
	switch name {
	case "illumina50":
		return simdata.Illumina50, nil
	case "illumina100":
		return simdata.Illumina100, nil
	case "illumina250":
		return simdata.Illumina250, nil
	case "simset1":
		return simdata.SimSet1, nil
	case "simset2":
		return simdata.SimSet2, nil
	default:
		return simdata.ReadProfile{}, fmt.Errorf("unknown read profile %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gksim: %v\n", err)
	os.Exit(1)
}
