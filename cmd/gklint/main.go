// Command gklint runs the repo's static-analysis suite (internal/lint) over
// every package in the enclosing module and reports invariant violations:
//
//	go run ./cmd/gklint ./...
//
// Diagnostics are printed one per line as file:line:col: analyzer: message
// (or, with -json, one JSON object per line with file/line/col/analyzer/
// message fields), and the exit status is non-zero when any finding
// survives. Suppressions require a //gk:allow <analyzer>: <reason> comment
// on the flagged line or the line above; unjustified or stale suppressions
// are findings themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON Lines (one object per finding)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gklint [-json] [./...]\n\ngklint always analyzes the whole module containing the working directory;\nthe ./... argument is accepted for familiarity.\n")
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "gklint: unsupported pattern %q (the whole module is always analyzed)\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(m, lint.Config{
		Analyzers:          lint.DefaultAnalyzers(),
		CheckRegistry:      true,
		ReportUnusedAllows: true,
	})
	for i, d := range diags {
		// Render paths relative to the module root so output is stable
		// across checkouts.
		if rel, err := filepath.Rel(root, d.Position.Filename); err == nil && !filepath.IsAbs(rel) {
			diags[i].Position.Filename = rel
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gklint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gklint:", err)
	os.Exit(1)
}
