// Command gkfilter runs pre-alignment filters on read/candidate pairs and
// reports accuracy against the exact edit distance.
//
// Pairs come either from a registered dataset profile (-set) or from a TSV
// file (-pairs) with one "read<TAB>reference" pair per line.
//
// With -stream, pairs run through the GateKeeper-GPU engine's asynchronous
// double-buffered streaming pipeline (Engine.FilterStream) on -gpus simulated
// devices instead of the per-pair filter loop, and the engine's modelled
// clocks are reported next to the accuracy numbers.
//
// Usage:
//
//	gkfilter -set set3 -n 10000 -e 5
//	gkfilter -set set1 -n 5000 -e 2 -filter sneakysnake
//	gkfilter -pairs pairs.tsv -e 4 -v
//	gkfilter -set set3 -n 100000 -e 5 -stream -gpus 4 -encoding host
//	gkfilter -set set3 -n 50000 -e 5 -stream -gpus 2 -fault-rate 0.05 -fault-die 3
//
// -fault-rate/-fault-seed/-fault-die inject deterministic device faults into
// a -stream run: the engine retries, quarantines dying devices and
// redispatches their batches, so decisions stay bit-identical while any
// device survives; with none left the run exits non-zero with the classified
// fault taxonomy after draining its input.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/align"
	"repro/internal/cuda"
	"repro/internal/filter"
	"repro/internal/gkgpu"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func main() {
	var (
		setName    = flag.String("set", "set3", "dataset profile (set1..set12, minimap2, bwamem)")
		pairsFile  = flag.String("pairs", "", "TSV file of read<TAB>reference pairs (overrides -set)")
		n          = flag.Int("n", 10_000, "number of pairs to generate from -set")
		e          = flag.Int("e", 5, "error threshold")
		filterName = flag.String("filter", "gatekeeper-gpu", "filter to run")
		seed       = flag.Int64("seed", 42, "generation seed")
		verbose    = flag.Bool("v", false, "print one line per pair")
		stream     = flag.Bool("stream", false, "filter through the streaming engine instead of the per-pair loop")
		gpus       = flag.Int("gpus", 2, "simulated devices for -stream")
		encoding   = flag.String("encoding", "host", "encoding actor for -stream: host or device")
		faultRate  = flag.Float64("fault-rate", 0, "inject launch/transfer faults on every simulated GPU at this per-op probability (-stream only)")
		faultSeed  = flag.Int64("fault-seed", 0, "fault schedule seed (0 = derive from -seed)")
		faultDie   = flag.Int("fault-die", 0, "simulated GPU 0 dies at its Nth launch (0 = never; -stream only)")
	)
	flag.Parse()

	f, err := filter.New(*filterName)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		// The verbose listing prints the estimate next to the true edit
		// distance; ask GateKeeper kernels for exhaustive estimates instead
		// of the default sealed (<= e) upper bound. Decisions are identical.
		if ex, ok := f.(interface{ SetExactEstimate(bool) }); ok {
			ex.SetExactEstimate(true)
		}
	}

	var reads, refs [][]byte
	if *pairsFile != "" {
		reads, refs, err = loadPairs(*pairsFile)
		if err != nil {
			fatal(err)
		}
	} else {
		profile, err := simdata.Set(*setName)
		if err != nil {
			fatal(err)
		}
		for _, pc := range simdata.Generate(profile, *seed, *n) {
			reads = append(reads, pc.Read)
			refs = append(refs, pc.Ref)
		}
		fmt.Printf("# %s: %d pairs, e=%d, filter=%s\n", profile.Name, len(reads), *e, f.Name())
	}

	var c metrics.Confusion
	if *stream {
		// The stream path always runs the GateKeeper-GPU engine; refuse
		// other -filter values rather than mis-attribute its numbers.
		if *filterName != "gatekeeper-gpu" {
			fatal(fmt.Errorf("-stream runs the gatekeeper-gpu engine; it cannot run -filter %s", *filterName))
		}
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed + 1000
		}
		results, err := streamFilter(reads, refs, *e, *gpus, *encoding, *verbose,
			faultConfig{rate: *faultRate, seed: fseed, dieAt: *faultDie})
		if err != nil {
			fatal(err)
		}
		for i, r := range results {
			trueDist := align.Distance(reads[i], refs[i])
			c.Add(metrics.Outcome{TrueWithin: trueDist <= *e, Accept: r.Accept})
		}
	} else {
		for i := range reads {
			d := f.Filter(reads[i], refs[i], *e)
			trueDist := align.Distance(reads[i], refs[i])
			c.Add(metrics.Outcome{TrueWithin: trueDist <= *e, Accept: d.Accept})
			if *verbose {
				fmt.Printf("pair %d: accept=%v estimate=%d edlib=%d undefined=%v\n",
					i, d.Accept, d.Estimate, trueDist, d.Undefined)
			}
		}
	}

	fmt.Printf("pairs:         %s\n", metrics.FmtInt(c.Pairs))
	fmt.Printf("edlib accepts: %s  rejects: %s\n", metrics.FmtInt(c.EdlibAccepts), metrics.FmtInt(c.EdlibRejects))
	fmt.Printf("filter accepts:%s  rejects: %s\n", metrics.FmtInt(c.FilterAccepts), metrics.FmtInt(c.FilterRejects))
	fmt.Printf("false accepts: %s (rate %s)\n", metrics.FmtInt(c.FalseAccepts), metrics.FmtPct(c.FalseAcceptRate()))
	fmt.Printf("false rejects: %s\n", metrics.FmtInt(c.FalseRejects))
	fmt.Printf("true rejects:  %s (rate %s)\n", metrics.FmtInt(c.TrueRejects), metrics.FmtPct(c.TrueRejectRate()))
}

// faultConfig carries the chaos-testing flags into the stream run.
type faultConfig struct {
	rate  float64
	seed  int64
	dieAt int
}

// inject attaches seeded fault plans to every device: launch and transfer
// faults at the per-op rate on all devices, device 0 dying at launch dieAt.
func (fc faultConfig) inject(cctx *cuda.Context) {
	if fc.rate <= 0 && fc.dieAt <= 0 {
		return
	}
	for i, d := range cctx.Devices() {
		plan := cuda.NewFaultPlan(fc.seed+int64(i)).
			WithRate(cuda.OpLaunch, fc.rate).
			WithRate(cuda.OpTransfer, fc.rate/2)
		if fc.dieAt > 0 && i == 0 {
			plan.DieAtLaunch(fc.dieAt)
		}
		d.InjectFaults(plan)
	}
}

// streamFilter runs every pair through Engine.FilterStream in input order and
// reports the engine's modelled clocks. Injected faults are survived
// bit-identically while a device remains; a terminal failure surfaces as the
// classified taxonomy error after the input fully drains.
func streamFilter(reads, refs [][]byte, e, gpus int, encoding string, verbose bool, fc faultConfig) ([]gkgpu.Result, error) {
	if len(reads) == 0 {
		return nil, nil
	}
	L := len(reads[0])
	for i := range reads {
		if len(reads[i]) != L || len(refs[i]) != L {
			return nil, fmt.Errorf("-stream needs uniform pair lengths; pair %d has %d/%d, want %d",
				i, len(reads[i]), len(refs[i]), L)
		}
	}
	var enc gkgpu.EncodingActor
	switch encoding {
	case "host":
		enc = gkgpu.EncodeOnHost
	case "device":
		enc = gkgpu.EncodeOnDevice
	default:
		return nil, fmt.Errorf("unknown encoding actor %q (want host or device)", encoding)
	}
	if gpus < 1 {
		return nil, fmt.Errorf("-gpus must be positive, got %d", gpus)
	}
	// Dispatch granularity: small enough that the workload spreads across
	// every device (a few batches each), large enough to amortize launches.
	streamBatch := len(reads) / (2 * gpus)
	if streamBatch < 256 {
		streamBatch = 256
	}
	if streamBatch > 1<<16 {
		streamBatch = 1 << 16
	}
	cctx := cuda.NewUniformContext(gpus, cuda.GTX1080Ti())
	eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: L, MaxE: e, Encoding: enc,
		MaxBatchPairs: 1 << 16, StreamBatchPairs: streamBatch}, cctx)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	fc.inject(cctx)

	in := make(chan gkgpu.Pair, 1024)
	out, err := eng.FilterStream(context.Background(), in, e)
	if err != nil {
		return nil, err
	}
	go func() {
		for i := range reads {
			in <- gkgpu.Pair{Read: reads[i], Ref: refs[i]}
		}
		close(in)
	}()
	results := make([]gkgpu.Result, 0, len(reads))
	for r := range out {
		if verbose {
			fmt.Printf("pair %d: accept=%v estimate=%d undefined=%v\n",
				len(results), r.Accept, r.Estimate, r.Undefined)
		}
		results = append(results, r)
	}
	if err := eng.StreamErr(); err != nil {
		return nil, fmt.Errorf("stream aborted: %w", err)
	}
	if len(results) != len(reads) {
		return nil, fmt.Errorf("stream returned %d of %d results", len(results), len(reads))
	}
	st := eng.Stats()
	fmt.Printf("# stream: %d devices, %s-encoded, %d batches\n", gpus, enc, st.Batches)
	fmt.Printf("# modelled kernel %.4fs, filter %.4fs (%.1f M pairs/s); wall %.3fs\n",
		st.KernelSeconds, st.FilterSeconds,
		float64(st.Pairs)/st.FilterSeconds/1e6, st.WallSeconds)
	return results, nil
}

func loadPairs(path string) (reads, refs [][]byte, err error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = fh.Close() }() //gk:allow errcheck: read-only input; scan errors surface via the scanner
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 || b[0] == '#' {
			continue
		}
		parts := bytes.Split(b, []byte("\t"))
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("%s:%d: want read<TAB>reference", path, line)
		}
		if len(parts[0]) != len(parts[1]) {
			return nil, nil, fmt.Errorf("%s:%d: unequal lengths %d/%d", path, line, len(parts[0]), len(parts[1]))
		}
		reads = append(reads, append([]byte(nil), parts[0]...))
		refs = append(refs, append([]byte(nil), parts[1]...))
	}
	return reads, refs, sc.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gkfilter: %v\n", err)
	os.Exit(1)
}
