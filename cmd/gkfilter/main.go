// Command gkfilter runs pre-alignment filters on read/candidate pairs and
// reports accuracy against the exact edit distance.
//
// Pairs come either from a registered dataset profile (-set) or from a TSV
// file (-pairs) with one "read<TAB>reference" pair per line.
//
// Usage:
//
//	gkfilter -set set3 -n 10000 -e 5
//	gkfilter -set set1 -n 5000 -e 2 -filter sneakysnake
//	gkfilter -pairs pairs.tsv -e 4 -v
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/align"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func main() {
	var (
		setName    = flag.String("set", "set3", "dataset profile (set1..set12, minimap2, bwamem)")
		pairsFile  = flag.String("pairs", "", "TSV file of read<TAB>reference pairs (overrides -set)")
		n          = flag.Int("n", 10_000, "number of pairs to generate from -set")
		e          = flag.Int("e", 5, "error threshold")
		filterName = flag.String("filter", "gatekeeper-gpu", "filter to run")
		seed       = flag.Int64("seed", 42, "generation seed")
		verbose    = flag.Bool("v", false, "print one line per pair")
	)
	flag.Parse()

	f, err := filter.New(*filterName)
	if err != nil {
		fatal(err)
	}

	var reads, refs [][]byte
	if *pairsFile != "" {
		reads, refs, err = loadPairs(*pairsFile)
		if err != nil {
			fatal(err)
		}
	} else {
		profile, err := simdata.Set(*setName)
		if err != nil {
			fatal(err)
		}
		for _, pc := range simdata.Generate(profile, *seed, *n) {
			reads = append(reads, pc.Read)
			refs = append(refs, pc.Ref)
		}
		fmt.Printf("# %s: %d pairs, e=%d, filter=%s\n", profile.Name, len(reads), *e, f.Name())
	}

	var c metrics.Confusion
	for i := range reads {
		d := f.Filter(reads[i], refs[i], *e)
		trueDist := align.Distance(reads[i], refs[i])
		c.Add(metrics.Outcome{TrueWithin: trueDist <= *e, Accept: d.Accept})
		if *verbose {
			fmt.Printf("pair %d: accept=%v estimate=%d edlib=%d undefined=%v\n",
				i, d.Accept, d.Estimate, trueDist, d.Undefined)
		}
	}

	fmt.Printf("pairs:         %s\n", metrics.FmtInt(c.Pairs))
	fmt.Printf("edlib accepts: %s  rejects: %s\n", metrics.FmtInt(c.EdlibAccepts), metrics.FmtInt(c.EdlibRejects))
	fmt.Printf("filter accepts:%s  rejects: %s\n", metrics.FmtInt(c.FilterAccepts), metrics.FmtInt(c.FilterRejects))
	fmt.Printf("false accepts: %s (rate %s)\n", metrics.FmtInt(c.FalseAccepts), metrics.FmtPct(c.FalseAcceptRate()))
	fmt.Printf("false rejects: %s\n", metrics.FmtInt(c.FalseRejects))
	fmt.Printf("true rejects:  %s (rate %s)\n", metrics.FmtInt(c.TrueRejects), metrics.FmtPct(c.TrueRejectRate()))
}

func loadPairs(path string) (reads, refs [][]byte, err error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 || b[0] == '#' {
			continue
		}
		parts := bytes.Split(b, []byte("\t"))
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("%s:%d: want read<TAB>reference", path, line)
		}
		if len(parts[0]) != len(parts[1]) {
			return nil, nil, fmt.Errorf("%s:%d: unequal lengths %d/%d", path, line, len(parts[0]), len(parts[1]))
		}
		reads = append(reads, append([]byte(nil), parts[0]...))
		refs = append(refs, append([]byte(nil), parts[1]...))
	}
	return reads, refs, sc.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gkfilter: %v\n", err)
	os.Exit(1)
}
