package main

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
)

func TestWriteSAMAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "out.sam")
	const payload = "@HD\tVN:1.6\nr0\t0\tchr1\t1\t255\t4M\t*\t0\t0\tACGT\t*\n"
	if err := writeSAMAtomic(dest, func(w io.Writer) error {
		_, err := io.WriteString(w, payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("destination content drifted: %q", got)
	}
	assertNoTempFiles(t, dir, "out.sam")
}

func TestWriteSAMAtomicFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "out.sam")
	boom := errors.New("mapper: streaming pre-alignment filter died")
	err := writeSAMAtomic(dest, func(w io.Writer) error {
		// Partial output followed by failure — the classic truncation shape.
		if _, werr := io.WriteString(w, "@HD\tVN:1.6\n"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writer error not surfaced: %v", err)
	}
	if _, serr := os.Stat(dest); !os.IsNotExist(serr) {
		t.Fatalf("failed write left a destination file: %v", serr)
	}
	assertNoTempFiles(t, dir, "out.sam")
}

func TestWriteSAMAtomicOverwriteSurvivesFailure(t *testing.T) {
	// A failed rewrite must leave the previous good artifact untouched.
	dir := t.TempDir()
	dest := filepath.Join(dir, "out.sam")
	if err := os.WriteFile(dest, []byte("old good sam\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	if err := writeSAMAtomic(dest, func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("writer error not surfaced: %v", err)
	}
	got, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old good sam\n" {
		t.Fatalf("failed rewrite damaged the existing artifact: %q", got)
	}
	assertNoTempFiles(t, dir, "out.sam")
}

func assertNoTempFiles(t *testing.T, dir, base string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), base+".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestInjectFaultsWiring(t *testing.T) {
	cctx := cuda.NewUniformContext(3, cuda.GTX1080Ti())
	injectFaults(cctx, 0, 0, 42, 0) // no-op configuration
	for i, d := range cctx.Devices() {
		if d.FaultPlan() != nil {
			t.Fatalf("device %d got a plan from a no-op config", i)
		}
	}
	injectFaults(cctx, 0.05, 0, 42, 4)
	for i, d := range cctx.Devices() {
		if d.FaultPlan() == nil {
			t.Fatalf("device %d missing its fault plan", i)
		}
	}
	// Device 0 carries the death: drive launches until it dies; the rate-only
	// devices never die.
	plan := cctx.Device(0).FaultPlan()
	lc := cuda.LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}
	died := false
	for i := 0; i < 16 && !died; i++ {
		if err := cctx.Device(0).Launch(lc, 32, func(worker, tid int) {}); errors.Is(err, cuda.ErrDeviceLost) {
			died = true
		}
	}
	if !died || !plan.Dead() {
		t.Fatal("-fault-die did not kill device 0")
	}
	if cctx.Device(1).FaultPlan().Dead() || cctx.Device(2).FaultPlan().Dead() {
		t.Fatal("death leaked onto a rate-only device")
	}
}

func TestFaultedEngineMatchesCleanDecisions(t *testing.T) {
	// The CLI-level identity claim behind -fault-rate/-fault-die: the engine
	// configuration gkmap builds, with plans attached exactly as injectFaults
	// attaches them, streams bit-identical decisions while a device survives.
	mk := func() (*gkgpu.Engine, *cuda.Context) {
		cctx := cuda.NewUniformContext(2, cuda.GTX1080Ti())
		eng, err := gkgpu.NewEngine(gkgpu.Config{
			ReadLen: 100, MaxE: 5, Encoding: gkgpu.EncodeOnHost,
			MaxBatchPairs: 1 << 16, StreamBatchPairs: 64,
		}, cctx)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		return eng, cctx
	}
	pairs := make([]gkgpu.Pair, 1500)
	for i := range pairs {
		read := make([]byte, 100)
		ref := make([]byte, 100)
		for j := range read {
			read[j] = "ACGT"[(i+j)%4]
			ref[j] = "ACGT"[(i+j+i%3)%4]
		}
		pairs[i] = gkgpu.Pair{Read: read, Ref: ref}
	}
	drain := func(eng *gkgpu.Engine) []gkgpu.Result {
		in := make(chan gkgpu.Pair, 64)
		out, err := eng.FilterStream(context.Background(), in, 5)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer close(in)
			for _, p := range pairs {
				in <- p
			}
		}()
		res := make([]gkgpu.Result, 0, len(pairs))
		for r := range out {
			res = append(res, r)
		}
		return res
	}

	clean, _ := mk()
	want := drain(clean)
	faulty, cctx := mk()
	injectFaults(cctx, 0.05, 0, 42, 3)
	got := drain(faulty)
	if err := faulty.StreamErr(); err != nil {
		t.Fatalf("faulted stream terminal with a survivor: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("faulted stream returned %d results, clean %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("decision %d drifted under faults: %+v vs %+v", i, got[i], want[i])
		}
	}
	if s := faulty.Stats(); s.DevicesLost != 1 {
		t.Fatalf("DevicesLost = %d, want 1", s.DevicesLost)
	}
}
