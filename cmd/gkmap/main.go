// Command gkmap runs the mrFAST-style mapper end to end, optionally with
// GateKeeper-GPU pre-alignment filtering, and reports the whole-genome
// evaluation counters (Table 3's columns).
//
// Inputs are FASTA (reference) and FASTQ (reads); with -sim the tool
// synthesizes both instead, which is how the paper-scale experiments run
// without redistributable data.
//
// With -stream, reads map through Mapper.MapStream — the overlapped
// seeding → filter-stream → verification pipeline — instead of the one-shot
// phases, and the pipeline-overlap accounting is reported. With -paired,
// mate pairs (synthesized FR pairs under -sim, or -reads-file plus -reads2)
// map through the streaming pipeline and concordant pairs are resolved
// against the insert window.
//
// Usage:
//
//	gkmap -sim -genome 500000 -reads 5000 -e 5 -prefilter gpu
//	gkmap -sim -stream -reads 5000 -e 5
//	gkmap -sim -paired -reads 2000 -insert-mean 400 -insert-std 40
//	gkmap -ref ref.fa -reads-file reads.fq -e 3 -prefilter none -sam out.sam
//	gkmap -ref ref.fa -reads-file r1.fq -reads2 r2.fq -paired -e 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func main() {
	var (
		sim       = flag.Bool("sim", false, "simulate the reference and reads")
		genomeLen = flag.Int("genome", 500_000, "simulated genome length")
		nReads    = flag.Int("reads", 5_000, "simulated read count")
		readLen   = flag.Int("readlen", 100, "read length (simulation)")
		refFile   = flag.String("ref", "", "reference FASTA (when not -sim)")
		readsFile = flag.String("reads-file", "", "reads FASTQ (when not -sim)")
		e         = flag.Int("e", 5, "edit distance threshold")
		preFilter = flag.String("prefilter", "gpu", "pre-alignment filter: gpu, cpu, or none")
		encoding  = flag.String("encoding", "device", "encoding actor for the GPU engine: device or host")
		nGPUs     = flag.Int("gpus", 1, "simulated GPU count")
		batch     = flag.Int("batch", 100_000, "max reads per filtering batch")
		samOut    = flag.String("sam", "", "write mappings as SAM to this file")
		strands   = flag.Bool("both-strands", false, "also map reverse complements")
		seed      = flag.Int64("seed", 42, "simulation seed")
		stream    = flag.Bool("stream", false, "map through the streaming pipeline (MapStream)")
		paired    = flag.Bool("paired", false, "paired-end mapping through the streaming pipeline")
		reads2    = flag.String("reads2", "", "mate FASTQ for -paired (when not -sim)")
		workers   = flag.Int("workers", 0, "streaming worker pools size (0 = GOMAXPROCS)")
		insMean   = flag.Int("insert-mean", 400, "simulated mean fragment length (-paired -sim)")
		insStd    = flag.Int("insert-std", 40, "simulated fragment length std dev (-paired -sim)")
		insMin    = flag.Int("insert-min", 0, "insert window minimum (0 = mean - 4 std)")
		insMax    = flag.Int("insert-max", 0, "insert window maximum (0 = mean + 4 std)")
	)
	flag.Parse()
	if *paired && *samOut != "" {
		fatal(fmt.Errorf("-sam supports single-end output only"))
	}

	var genome []byte
	var seqs [][]byte
	var pairs []mapper.ReadPair
	refName := "chrSim"
	switch {
	case *sim && *paired:
		cfg := simdata.DefaultGenomeConfig(*genomeLen)
		cfg.Seed = *seed
		genome = simdata.Genome(cfg)
		profile := simdata.Illumina100
		profile.Length = *readLen
		simPairs, err := simdata.SimulatePairs(genome, profile, *nReads, *insMean, *insStd, *seed+1)
		if err != nil {
			fatal(err)
		}
		for _, p := range simPairs {
			pairs = append(pairs, mapper.ReadPair{R1: p.R1.Seq, R2: p.R2.Seq})
		}
	case *sim:
		cfg := simdata.DefaultGenomeConfig(*genomeLen)
		cfg.Seed = *seed
		genome = simdata.Genome(cfg)
		profile := simdata.Illumina100
		profile.Length = *readLen
		reads, err := simdata.SimulateReads(genome, profile, *nReads, *seed+1)
		if err != nil {
			fatal(err)
		}
		for _, r := range reads {
			seqs = append(seqs, r.Seq)
		}
	case *refFile != "" && *readsFile != "":
		rf, err := os.Open(*refFile)
		if err != nil {
			fatal(err)
		}
		recs, err := dna.ReadFASTA(rf)
		rf.Close()
		if err != nil {
			fatal(err)
		}
		if len(recs) == 0 {
			fatal(fmt.Errorf("no sequences in %s", *refFile))
		}
		genome = recs[0].Seq
		refName = recs[0].Name
		qf, err := os.Open(*readsFile)
		if err != nil {
			fatal(err)
		}
		reads, err := dna.ReadFASTQ(qf)
		qf.Close()
		if err != nil {
			fatal(err)
		}
		for _, r := range reads {
			seqs = append(seqs, r.Seq)
		}
		if len(seqs) > 0 {
			*readLen = len(seqs[0])
		}
		if *paired {
			if *reads2 == "" {
				fatal(fmt.Errorf("-paired file mode needs -reads2"))
			}
			qf2, err := os.Open(*reads2)
			if err != nil {
				fatal(err)
			}
			mates, err := dna.ReadFASTQ(qf2)
			qf2.Close()
			if err != nil {
				fatal(err)
			}
			if len(mates) != len(seqs) {
				fatal(fmt.Errorf("%d reads in %s but %d mates in %s",
					len(seqs), *readsFile, len(mates), *reads2))
			}
			for i, m := range mates {
				pairs = append(pairs, mapper.ReadPair{R1: seqs[i], R2: m.Seq})
			}
			seqs = nil
		}
	default:
		fatal(fmt.Errorf("provide -sim, or both -ref and -reads-file"))
	}

	cfg := mapper.Config{ReadLen: *readLen, MaxE: *e, MaxReadsPerBatch: *batch,
		BothStrands: *strands, Traceback: *samOut != "", StreamWorkers: *workers}
	switch *preFilter {
	case "gpu":
		enc := gkgpu.EncodeOnDevice
		if *encoding == "host" {
			enc = gkgpu.EncodeOnHost
		}
		eng, err := gkgpu.NewEngine(gkgpu.Config{
			ReadLen: *readLen, MaxE: *e, Encoding: enc, MaxBatchPairs: 1 << 16,
		}, cuda.NewUniformContext(*nGPUs, cuda.GTX1080Ti()))
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		cfg.Filter = eng
	case "cpu":
		cpu, err := gkgpu.NewCPUEngine(*readLen, *e, 12, gkgpu.Setup1(), cuda.DefaultCostModel())
		if err != nil {
			fatal(err)
		}
		cfg.Filter = cpu
	case "none":
	default:
		fatal(fmt.Errorf("unknown prefilter %q", *preFilter))
	}

	m, err := mapper.New(genome, cfg)
	if err != nil {
		fatal(err)
	}
	var mappings []mapper.Mapping
	var resolved []mapper.PairMapping
	var st mapper.Stats
	switch {
	case *paired:
		lo, hi := *insMin, *insMax
		if lo == 0 {
			lo = *insMean - 4**insStd
		}
		if lo < *readLen {
			lo = *readLen
		}
		if hi == 0 {
			hi = *insMean + 4**insStd
		}
		resolved, st, err = m.MapPairs(pairs, *e, mapper.InsertWindow{Min: lo, Max: hi})
	case *stream:
		mappings, st, err = m.MapStream(seqs, *e)
	default:
		mappings, st, err = m.MapReads(seqs, *e)
	}
	if err != nil {
		fatal(err)
	}

	if *paired {
		fmt.Printf("read pairs:          %s\n", metrics.FmtInt(st.ReadPairs))
		fmt.Printf("concordant pairs:    %s (%.1f%%)\n", metrics.FmtInt(st.ConcordantPairs),
			100*float64(st.ConcordantPairs)/float64(max(st.ReadPairs, 1)))
	}
	fmt.Printf("reads:               %s\n", metrics.FmtInt(st.Reads))
	fmt.Printf("candidate mappings:  %s\n", metrics.FmtInt(st.CandidatePairs))
	fmt.Printf("verification pairs:  %s\n", metrics.FmtInt(st.VerificationPairs))
	fmt.Printf("rejected pairs:      %s (%.1f%% reduction)\n",
		metrics.FmtInt(st.RejectedPairs), 100*st.Reduction())
	fmt.Printf("undefined pairs:     %s\n", metrics.FmtInt(st.UndefinedPairs))
	fmt.Printf("mappings:            %s\n", metrics.FmtInt(st.Mappings))
	fmt.Printf("mapped reads:        %s\n", metrics.FmtInt(st.MappedReads))
	fmt.Printf("seeding:             %.3fs\n", st.SeedSeconds)
	fmt.Printf("filter (wall):       %.3fs\n", st.FilterWallSeconds)
	fmt.Printf("filter kernel model: %.4fs\n", st.FilterKernelModel)
	fmt.Printf("verification:        %.3fs\n", st.VerifySeconds)
	fmt.Printf("total:               %.3fs\n", st.TotalSeconds)
	if st.PipelineWallSeconds > 0 {
		fmt.Printf("pipeline wall:       %.3fs (stage seconds %.3fs, overlap hidden %.3fs)\n",
			st.PipelineWallSeconds, st.StageSeconds(), st.OverlapSeconds())
	}
	if *paired {
		var insSum int64
		for _, pm := range resolved {
			insSum += int64(pm.Insert)
		}
		if len(resolved) > 0 {
			fmt.Printf("mean insert:         %d\n", insSum/int64(len(resolved)))
		}
	}

	if *samOut != "" {
		fh, err := os.Create(*samOut)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		if err := mapper.WriteSAM(fh, refName, len(genome), seqs, mappings); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *samOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gkmap: %v\n", err)
	os.Exit(1)
}
