// Command gkmap runs the mrFAST-style mapper end to end, optionally with
// GateKeeper-GPU pre-alignment filtering, and reports the whole-genome
// evaluation counters (Table 3's columns).
//
// Inputs are FASTA (reference) and FASTQ (reads); with -sim the tool
// synthesizes both instead, which is how the paper-scale experiments run
// without redistributable data. The reference FASTA may be multi-contig (a
// whole genome of chromosomes): every record is loaded into one
// mapper.Reference, reads map against all contigs with contig-relative
// coordinates (candidates never straddle a contig boundary), the report
// breaks mappings down per contig, and SAM output carries one @SQ line per
// contig with each record's RNAME naming its contig. Described FASTA
// headers (">chr1 Homo sapiens") contribute only their first word as the
// contig name, keeping @SQ SN: and RNAME SAM-legal. File mode decodes FASTQ
// incrementally (dna.FASTQScanner) and validates a uniform read length, R2
// included.
//
// With -stream, reads map through the channel-fed streaming pipeline
// (Mapper.MapReadStream / MapPairStream) as they are decoded — the read set
// is never materialized unless -sam needs the sequences back for output —
// and the pipeline-overlap accounting is reported. With -paired, mate pairs
// (synthesized FR pairs under -sim, or -reads-file plus -reads2) map
// through the streaming pipeline and concordant pairs are resolved against
// the insert window; when no -insert-min/-max is given the window is
// estimated from a sample of confidently mapped pairs; giving just one of
// -insert-min/-insert-max pins that bound and estimates the other. -sam
// writes single-end records, or standard paired records (flags,
// RNEXT/PNEXT/TLEN) under -paired, with QNAMEs taken from the FASTQ input.
//
// Usage:
//
//	gkmap -sim -genome 500000 -reads 5000 -e 5 -prefilter gpu
//	gkmap -sim -stream -reads 5000 -e 5
//	gkmap -sim -paired -reads 2000 -insert-mean 400 -insert-std 40 -sam out.sam
//	gkmap -ref ref.fa -reads-file reads.fq -e 3 -prefilter none -sam out.sam
//	gkmap -ref genome.fa -reads-file r1.fq -reads2 r2.fq -paired -stream -sam out.sam
//	gkmap -ref genome.fa -index genome.gkix -reads-file reads.fq -sam out.sam
//
// where genome.fa may hold any number of contigs. -index loads a GKIX index
// serialized by gkindex instead of rebuilding it — on genome-scale
// references the build dominates startup, the load is a single sequential
// read — and adopts the file's recorded seed length and step, so no -k or
// -seedstep bookkeeping can drift between indexing and mapping.
//
// -fault-rate/-fault-seed/-fault-die inject deterministic faults into the
// simulated GPUs (gpu prefilter only): the streaming engine retries,
// quarantines dying devices and redispatches their work, so the output is
// bit-identical while any device survives; with none left the run exits
// non-zero with the classified fault taxonomy. -sam always writes through a
// temp file in the destination directory renamed into place on success, so
// no failure mode leaves a truncated .sam behind.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func main() {
	var (
		sim       = flag.Bool("sim", false, "simulate the reference and reads")
		genomeLen = flag.Int("genome", 500_000, "simulated genome length")
		nReads    = flag.Int("reads", 5_000, "simulated read count")
		readLen   = flag.Int("readlen", 100, "read length (simulation)")
		refFile   = flag.String("ref", "", "reference FASTA (when not -sim)")
		readsFile = flag.String("reads-file", "", "reads FASTQ (when not -sim)")
		indexFile = flag.String("index", "", "GKIX index file from gkindex; skips the index build and adopts the file's seed geometry")
		seedStep  = flag.Int("seedstep", 0, "seed step for the in-memory index build (0 = every window; ignored with -index)")
		e         = flag.Int("e", 5, "edit distance threshold")
		preFilter = flag.String("prefilter", "gpu", "pre-alignment filter: gpu, cpu, or none")
		encoding  = flag.String("encoding", "device", "encoding actor for the GPU engine: device or host")
		nGPUs     = flag.Int("gpus", 1, "simulated GPU count")
		batch     = flag.Int("batch", 100_000, "max reads per filtering batch")
		samOut    = flag.String("sam", "", "write mappings as SAM to this file (paired records under -paired)")
		strands   = flag.Bool("both-strands", false, "also map reverse complements")
		seed      = flag.Int64("seed", 42, "simulation seed")
		stream    = flag.Bool("stream", false, "map through the channel-fed streaming pipeline")
		paired    = flag.Bool("paired", false, "paired-end mapping through the streaming pipeline")
		reads2    = flag.String("reads2", "", "mate FASTQ for -paired (when not -sim)")
		workers   = flag.Int("workers", 0, "streaming worker pools size (0 = GOMAXPROCS)")
		insMean   = flag.Int("insert-mean", 400, "simulated mean fragment length (-paired -sim only; never a window default)")
		insStd    = flag.Int("insert-std", 40, "simulated fragment length std dev (-paired -sim only; never a window default)")
		insMin    = flag.Int("insert-min", 0, "insert window minimum (0 = estimate this bound from the data)")
		insMax    = flag.Int("insert-max", 0, "insert window maximum (0 = estimate this bound from the data)")
		showMet   = flag.Bool("metrics", false, "print the internal hot-path counters (filtrations, seed lookups, contig locates)")
		faultRate = flag.Float64("fault-rate", 0, "inject launch/transfer faults on every simulated GPU at this per-op probability (chaos testing; gpu prefilter only)")
		faultSeed = flag.Int64("fault-seed", 0, "fault schedule seed (0 = derive from -seed)")
		faultDie  = flag.Int("fault-die", 0, "simulated GPU 0 dies at its Nth launch (0 = never; gpu prefilter only)")
	)
	flag.Parse()

	// The input source: simulated data is materialized up front; file mode
	// decodes FASTQ incrementally, peeking only the first record to learn
	// the read length before the mapper is built. The reference is a
	// mapper.Reference either way — a single simulated contig under -sim,
	// every FASTA record otherwise.
	var ref *mapper.Reference
	var seqs [][]byte
	var names []string
	var pairs []mapper.ReadPair
	var src1, src2 *fastqSource
	fileMode := false
	simGenome := func() []byte {
		cfg := simdata.DefaultGenomeConfig(*genomeLen)
		cfg.Seed = *seed
		g := simdata.Genome(cfg)
		ref = mapper.SingleContig("chrSim", g)
		return g
	}
	switch {
	case *sim && *paired:
		genome := simGenome()
		profile := simdata.Illumina100
		profile.Length = *readLen
		simPairs, err := simdata.SimulatePairs(genome, profile, *nReads, *insMean, *insStd, *seed+1)
		if err != nil {
			fatal(err)
		}
		for _, p := range simPairs {
			pairs = append(pairs, mapper.ReadPair{R1: p.R1.Seq, R2: p.R2.Seq})
		}
	case *sim:
		genome := simGenome()
		profile := simdata.Illumina100
		profile.Length = *readLen
		reads, err := simdata.SimulateReads(genome, profile, *nReads, *seed+1)
		if err != nil {
			fatal(err)
		}
		for _, r := range reads {
			seqs = append(seqs, r.Seq)
		}
	case *refFile != "" && *readsFile != "":
		fileMode = true
		rf, err := os.Open(*refFile)
		if err != nil {
			fatal(err)
		}
		recs, err := dna.ReadFASTA(rf)
		_ = rf.Close() //gk:allow errcheck: read-only input; read errors surface via ReadFASTA
		if err != nil {
			fatal(err)
		}
		if len(recs) == 0 {
			fatal(fmt.Errorf("no sequences in %s", *refFile))
		}
		ref, err = mapper.NewReference(recs)
		if err != nil {
			fatal(err)
		}
		src1, err = openFASTQ(*readsFile)
		if err != nil {
			fatal(err)
		}
		defer src1.close()
		first, ok, err := src1.peek()
		if err != nil {
			fatal(err)
		}
		if !ok {
			fatal(fmt.Errorf("no reads in %s", *readsFile))
		}
		*readLen = len(first.Seq)
		src1.readLen = *readLen
		if *paired {
			if *reads2 == "" {
				fatal(fmt.Errorf("-paired file mode needs -reads2"))
			}
			src2, err = openFASTQ(*reads2)
			if err != nil {
				fatal(err)
			}
			defer src2.close()
			src2.readLen = *readLen
		}
	default:
		fatal(fmt.Errorf("provide -sim, or both -ref and -reads-file"))
	}

	cfg := mapper.Config{ReadLen: *readLen, MaxE: *e, MaxReadsPerBatch: *batch,
		BothStrands: *strands, Traceback: *samOut != "", StreamWorkers: *workers,
		SeedStep: *seedStep}
	switch *preFilter {
	case "gpu":
		enc := gkgpu.EncodeOnDevice
		if *encoding == "host" {
			enc = gkgpu.EncodeOnHost
		}
		cctx := cuda.NewUniformContext(*nGPUs, cuda.GTX1080Ti())
		eng, err := gkgpu.NewEngine(gkgpu.Config{
			ReadLen: *readLen, MaxE: *e, Encoding: enc, MaxBatchPairs: 1 << 16,
		}, cctx)
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		// Fault plans attach after the engine's own buffer allocation so a
		// chaos run exercises the streaming retry/redispatch machinery, not
		// startup. Streams survive (bit-identically) while a device remains;
		// otherwise the run exits non-zero with the classified taxonomy
		// error and -sam leaves no partial file behind.
		injectFaults(cctx, *faultRate, *faultSeed, *seed, *faultDie)
		cfg.Filter = eng
	case "cpu":
		cpu, err := gkgpu.NewCPUEngine(*readLen, *e, 12, gkgpu.Setup1(), cuda.DefaultCostModel())
		if err != nil {
			fatal(err)
		}
		cfg.Filter = cpu
	case "none":
	default:
		fatal(fmt.Errorf("unknown prefilter %q", *preFilter))
	}

	var m *mapper.Mapper
	var err error
	if *indexFile != "" {
		// The serialized index carries its own k and step; the mapper adopts
		// them (and rejects the file if it wasn't built from this reference).
		m, err = mapper.NewFromSerializedIndex(ref, *indexFile, cfg)
	} else {
		m, err = mapper.NewFromReference(ref, cfg)
	}
	if err != nil {
		fatal(err)
	}

	// -sam needs the sequences (and names) back at output time, so the
	// channel-fed paths retain them while feeding; without it nothing is
	// kept and the pipeline's peak memory is its in-flight work.
	retain := *samOut != ""
	// The insert window passes straight through: a zero bound means
	// "estimate this bound from confidently mapped pairs" (both zero
	// estimates the whole window), so a lone -insert-min or -insert-max
	// pins one side and never falls back to the sim-only
	// -insert-mean/-std defaults. An inverted explicit window is rejected
	// before any mapping work runs.
	win := mapper.InsertWindow{Min: *insMin, Max: *insMax}
	if *insMin > 0 && *insMax > 0 && *insMax < *insMin {
		fatal(fmt.Errorf("-insert-min %d > -insert-max %d", *insMin, *insMax))
	}

	var mappings []mapper.Mapping
	var resolved []mapper.PairMapping
	var st mapper.Stats
	switch {
	case *paired && (*stream || fileMode):
		// Channel-fed paired mapping; file mode decodes both FASTQs in
		// lockstep as the pipeline consumes them.
		ch := make(chan mapper.PairRead, 256)
		feedErr := make(chan error, 1)
		go func() {
			defer close(ch)
			if fileMode {
				feedErr <- feedFilePairs(ch, src1, src2, retain, &pairs, &names)
			} else {
				feedErr <- feedSimPairs(ch, pairs)
			}
		}()
		resolved, st, err = m.MapPairStream(ch, *e, win)
		if ferr := <-feedErr; ferr != nil {
			// An input malformation is the root cause; it wins over
			// whatever the starved pipeline reported downstream.
			err = ferr
		}
	case *paired:
		resolved, st, err = m.MapPairs(pairs, *e, win)
	case *stream:
		ch := make(chan mapper.Read, 256)
		feedErr := make(chan error, 1)
		go func() {
			defer close(ch)
			if fileMode {
				feedErr <- feedFileReads(ch, src1, retain, &seqs, &names)
			} else {
				feedErr <- feedSimReads(ch, seqs)
			}
		}()
		mappings, st, err = m.MapReadStream(ch, *e)
		if ferr := <-feedErr; ferr != nil {
			// An input malformation is the root cause; it wins over
			// whatever the starved pipeline reported downstream.
			err = ferr
		}
	case fileMode:
		// One-shot file mode: the scanner still decodes incrementally (same
		// framing and length validation), collected for batch MapReads.
		for {
			rec, ok, rerr := src1.next()
			if rerr != nil {
				fatal(rerr)
			}
			if !ok {
				break
			}
			seqs = append(seqs, rec.Seq)
			names = append(names, rec.Name)
		}
		mappings, st, err = m.MapReads(seqs, *e)
	default:
		mappings, st, err = m.MapReads(seqs, *e)
	}
	if err != nil {
		fatal(err)
	}

	if *paired {
		fmt.Printf("read pairs:          %s\n", metrics.FmtInt(st.ReadPairs))
		fmt.Printf("concordant pairs:    %s (%.1f%%)\n", metrics.FmtInt(st.ConcordantPairs),
			100*float64(st.ConcordantPairs)/float64(max(st.ReadPairs, 1)))
		if st.InsertSampledPairs > 0 {
			fmt.Printf("insert window:       [%d,%d] (estimated mean %.0f ± %.0f from %d pairs)\n",
				st.InsertWindowMin, st.InsertWindowMax, st.InsertMean, st.InsertStd, st.InsertSampledPairs)
		} else {
			fmt.Printf("insert window:       [%d,%d] (explicit)\n", st.InsertWindowMin, st.InsertWindowMax)
		}
	}
	fmt.Printf("reads:               %s\n", metrics.FmtInt(st.Reads))
	fmt.Printf("candidate mappings:  %s\n", metrics.FmtInt(st.CandidatePairs))
	fmt.Printf("verification pairs:  %s\n", metrics.FmtInt(st.VerificationPairs))
	fmt.Printf("rejected pairs:      %s (%.1f%% reduction)\n",
		metrics.FmtInt(st.RejectedPairs), 100*st.Reduction())
	fmt.Printf("undefined pairs:     %s\n", metrics.FmtInt(st.UndefinedPairs))
	fmt.Printf("mappings:            %s\n", metrics.FmtInt(st.Mappings))
	fmt.Printf("mapped reads:        %s\n", metrics.FmtInt(st.MappedReads))
	if ref.NumContigs() > 1 {
		// Per-contig breakdown: where the mappings (or resolved pairs)
		// landed across the reference's contigs.
		perContig := make([]int64, ref.NumContigs())
		if *paired {
			for _, pm := range resolved {
				perContig[pm.Mate1.Contig] += 2 // both mates, same contig
			}
		} else {
			for _, mp := range mappings {
				perContig[mp.Contig]++
			}
		}
		fmt.Printf("contigs:             %d\n", ref.NumContigs())
		for i, c := range ref.Contigs() {
			what := "mappings"
			if *paired {
				what = "mate records"
			}
			fmt.Printf("  %-16s len %-10d %s %s\n", c.Name, c.Len, what, metrics.FmtInt(perContig[i]))
		}
	}
	if *showMet {
		// The process-wide hot-path counters: one line, so the parallel
		// pipeline's actual work volume is observable next to the stats.
		fmt.Printf("metrics:             filtrations=%d seed_lookups=%d contig_locates=%d\n",
			metrics.Filtrations.Load(), metrics.SeedLookups.Load(), metrics.ContigLocates.Load())
	}
	fmt.Printf("seeding:             %.3fs\n", st.SeedSeconds)
	fmt.Printf("filter (wall):       %.3fs\n", st.FilterWallSeconds)
	fmt.Printf("filter kernel model: %.4fs\n", st.FilterKernelModel)
	fmt.Printf("verification:        %.3fs\n", st.VerifySeconds)
	fmt.Printf("total:               %.3fs\n", st.TotalSeconds)
	if st.PipelineWallSeconds > 0 {
		fmt.Printf("pipeline wall:       %.3fs (stage seconds %.3fs, overlap hidden %.3fs)\n",
			st.PipelineWallSeconds, st.StageSeconds(), st.OverlapSeconds())
	}
	if *paired {
		var insSum int64
		for _, pm := range resolved {
			insSum += int64(pm.Insert)
		}
		if len(resolved) > 0 {
			fmt.Printf("mean insert:         %d\n", insSum/int64(len(resolved)))
		}
	}

	if *samOut != "" {
		err := writeSAMAtomic(*samOut, func(w io.Writer) error {
			if *paired {
				return mapper.WritePairedSAM(w, ref, names, pairs, resolved)
			}
			return mapper.WriteSAM(w, ref, names, seqs, mappings)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *samOut)
	}
}

// writeSAMAtomic writes the SAM through a temp file in the destination's
// directory and renames it into place only after a clean close, so a crash,
// a full disk, or a mapping failure upstream never leaves a truncated .sam
// where a consumer (samtools, a workflow engine) would pick it up. On any
// failure the temp file is removed and the destination is untouched.
func writeSAMAtomic(dest string, write func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(dest), filepath.Base(dest)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = tmp.Close()           //gk:allow errcheck: already failing; the remove is the cleanup that matters
			_ = os.Remove(tmp.Name()) //gk:allow errcheck: best-effort cleanup on a failure path
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// Sync before rename: the rename must never promote a file whose bytes
	// the OS still holds only in cache.
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), dest)
}

// injectFaults attaches seeded fault plans to every device of the filter
// context: launch and transfer faults at the given per-op rate on all
// devices, plus device 0 dying at its dieAt'th launch.
func injectFaults(cctx *cuda.Context, rate float64, faultSeed, seed int64, dieAt int) {
	if rate <= 0 && dieAt <= 0 {
		return
	}
	if faultSeed == 0 {
		faultSeed = seed + 1000
	}
	for i, d := range cctx.Devices() {
		plan := cuda.NewFaultPlan(faultSeed+int64(i)).
			WithRate(cuda.OpLaunch, rate).
			WithRate(cuda.OpTransfer, rate/2)
		if dieAt > 0 && i == 0 {
			plan.DieAtLaunch(dieAt)
		}
		d.InjectFaults(plan)
	}
}

// fastqSource decodes one FASTQ file incrementally, with one record of
// lookahead so the read length is known before the mapper is built.
type fastqSource struct {
	path    string
	f       *os.File
	sc      *dna.FASTQScanner
	peeked  *dna.Record
	n       int // records handed out
	readLen int // 0 until the first record fixes it
}

func openFASTQ(path string) (*fastqSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &fastqSource{path: path, f: f, sc: dna.NewFASTQScanner(f)}, nil
}

func (s *fastqSource) close() { _ = s.f.Close() } //gk:allow errcheck: read-only input; scan errors surface via peek/next

// peek returns the next record without consuming it.
func (s *fastqSource) peek() (dna.Record, bool, error) {
	if s.peeked == nil {
		if !s.sc.Scan() {
			return dna.Record{}, false, s.sc.Err()
		}
		rec := s.sc.Record()
		s.peeked = &rec
	}
	return *s.peeked, true, nil
}

// next consumes one record, enforcing the uniform read length the mapper
// requires (the first record fixes it).
func (s *fastqSource) next() (dna.Record, bool, error) {
	rec, ok, err := s.peek()
	if !ok || err != nil {
		return dna.Record{}, false, err
	}
	s.peeked = nil
	if s.readLen == 0 {
		s.readLen = len(rec.Seq)
	} else if len(rec.Seq) != s.readLen {
		return dna.Record{}, false, fmt.Errorf("%s: read %d (%q) has length %d, expected uniform length %d",
			s.path, s.n, rec.Name, len(rec.Seq), s.readLen)
	}
	s.n++
	return rec, true, nil
}

// feedFileReads streams one FASTQ into the single-end pipeline, optionally
// retaining sequences and names for SAM output or one-shot mapping.
func feedFileReads(ch chan<- mapper.Read, src *fastqSource, retain bool, seqs *[][]byte, names *[]string) error {
	for {
		rec, ok, err := src.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if retain {
			*seqs = append(*seqs, rec.Seq)
			*names = append(*names, rec.Name)
		}
		ch <- mapper.Read{Name: rec.Name, Seq: rec.Seq}
	}
}

// feedFilePairs streams two FASTQ files in lockstep into the paired
// pipeline, enforcing equal record counts and a uniform read length across
// both mates.
func feedFilePairs(ch chan<- mapper.PairRead, src1, src2 *fastqSource, retain bool, pairs *[]mapper.ReadPair, names *[]string) error {
	for {
		r1, ok1, err := src1.next()
		if err != nil {
			return err
		}
		r2, ok2, err := src2.next()
		if err != nil {
			return err
		}
		if !ok1 && !ok2 {
			return nil
		}
		if ok1 != ok2 {
			short := src1.path
			if ok1 {
				short = src2.path
			}
			return fmt.Errorf("%s and %s have different read counts (%s ends after %d records)",
				src1.path, src2.path, short, min(src1.n, src2.n))
		}
		if retain {
			*pairs = append(*pairs, mapper.ReadPair{R1: r1.Seq, R2: r2.Seq})
			*names = append(*names, r1.Name)
		}
		ch <- mapper.PairRead{Name: r1.Name, R1: r1.Seq, R2: r2.Seq}
	}
}

func feedSimReads(ch chan<- mapper.Read, seqs [][]byte) error {
	for i, s := range seqs {
		ch <- mapper.Read{Name: fmt.Sprintf("read%d", i), Seq: s}
	}
	return nil
}

func feedSimPairs(ch chan<- mapper.PairRead, pairs []mapper.ReadPair) error {
	for i, p := range pairs {
		ch <- mapper.PairRead{Name: fmt.Sprintf("pair%d", i), R1: p.R1, R2: p.R2}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gkmap: %v\n", err)
	os.Exit(1)
}
