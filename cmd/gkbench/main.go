// Command gkbench regenerates the paper's tables and figures. Each
// experiment prints measured values next to the paper's reference numbers.
//
// Usage:
//
//	gkbench -list                 # enumerate experiment IDs
//	gkbench -exp fig4             # run one experiment
//	gkbench -all                  # run everything
//	gkbench -exp table2 -scale 5  # 5x the default workload sizes
//	gkbench -stream               # one-shot vs streaming pipeline comparison
//	gkbench -json                 # write a BENCH_<stamp>.json perf baseline
//	gkbench -json -baseline FILE  # ...and compare against an older capture
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		stream   = flag.Bool("stream", false, "run the streaming-pipeline comparison (shorthand for -exp pipeline)")
		jsonOut  = flag.Bool("json", false, "run the kernel/filter/index micro-benchmarks and write BENCH_<stamp>.json")
		jsonDir  = flag.String("json-dir", ".", "directory for the -json baseline file")
		baseline = flag.String("baseline", "", "older BENCH_<stamp>.json to compare the -json capture against")
		benchTag = flag.String("label", "", "free-form label recorded in the -json baseline")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = quick laptop sizes)")
		seed     = flag.Int64("seed", 42, "dataset generation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %-32s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}
	if *jsonOut {
		if *all || *exp != "" || *stream {
			fmt.Fprintln(os.Stderr, "gkbench: -json conflicts with -exp/-all/-stream (it runs its own fixed micro-suite)")
			os.Exit(2)
		}
		if *scale != 1.0 || *seed != 42 {
			fmt.Fprintln(os.Stderr, "gkbench: -json ignores -scale/-seed; its workloads are fixed so baselines stay comparable")
			os.Exit(2)
		}
		path, err := harness.RunBenchJSON(*jsonDir, *benchTag, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gkbench: %v\n", err)
			os.Exit(1)
		}
		if *baseline != "" {
			old, err := harness.LoadBenchReport(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gkbench: %v\n", err)
				os.Exit(1)
			}
			cur, err := harness.LoadBenchReport(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gkbench: %v\n", err)
				os.Exit(1)
			}
			harness.CompareBench(old, cur, os.Stdout)
		}
		return
	}
	if *baseline != "" {
		fmt.Fprintln(os.Stderr, "gkbench: -baseline requires -json")
		os.Exit(2)
	}
	opts := harness.Options{Out: os.Stdout, Scale: *scale, Seed: *seed}
	if *stream && (*all || *exp != "") {
		fmt.Fprintln(os.Stderr, "gkbench: -stream conflicts with -exp/-all (it is shorthand for -exp pipeline)")
		os.Exit(2)
	}
	switch {
	case *stream:
		if err := harness.Run("pipeline", opts); err != nil {
			fmt.Fprintf(os.Stderr, "gkbench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		for _, id := range harness.IDs() {
			if err := harness.Run(id, opts); err != nil {
				fmt.Fprintf(os.Stderr, "gkbench: %v\n", err)
				os.Exit(1)
			}
		}
	case *exp != "":
		if err := harness.Run(*exp, opts); err != nil {
			fmt.Fprintf(os.Stderr, "gkbench: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "gkbench: nothing to do; use -exp ID, -all, or -list")
		os.Exit(2)
	}
}
