// Command gkindex builds the mapper's CSR k-mer index over a reference
// FASTA and serializes it in the GKIX on-disk format, so genome-scale
// mapping runs (gkmap -index) can skip the index build entirely: load is a
// header read plus one large sequential read, with the arrays resliced in
// place rather than decoded.
//
// The seed geometry is fixed at build time and recorded in the file —
// gkmap adopts k and step from the index, so the two never drift apart.
//
// Usage:
//
//	gkindex -ref genome.fa -out genome.gkix
//	gkindex -ref genome.fa -out genome.gkix -k 13 -step 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dna"
	"repro/internal/mapper"
)

func main() {
	var (
		refFile = flag.String("ref", "", "reference FASTA to index (required)")
		outFile = flag.String("out", "", "output GKIX index file (required)")
		k       = flag.Int("k", mapper.DefaultSeedLen, "seed length in [8,16]")
		step    = flag.Int("step", 1, "seed step: index one in every step contig-relative window starts")
	)
	flag.Parse()
	if *refFile == "" || *outFile == "" {
		fmt.Fprintln(os.Stderr, "gkindex: -ref and -out are required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*refFile)
	if err != nil {
		fatal(err)
	}
	recs, err := dna.ReadFASTA(f)
	_ = f.Close() //gk:allow errcheck: read-only input; read errors surface via ReadFASTA
	if err != nil {
		fatal(err)
	}
	ref, err := mapper.NewReference(recs)
	if err != nil {
		fatal(err)
	}

	buildStart := time.Now()
	idx, err := mapper.NewSteppedReferenceIndex(ref, *k, *step)
	if err != nil {
		fatal(err)
	}
	buildSecs := time.Since(buildStart).Seconds()

	writeStart := time.Now()
	if err := idx.SerializeToFile(*outFile); err != nil {
		fatal(err)
	}
	writeSecs := time.Since(writeStart).Seconds()
	st, err := os.Stat(*outFile)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("reference:        %d contigs, %d bases\n", ref.NumContigs(), ref.Len())
	fmt.Printf("seed geometry:    k=%d step=%d\n", idx.K(), idx.Step())
	fmt.Printf("indexed entries:  %d (%d distinct k-mers)\n", idx.Entries(), idx.DistinctKmers())
	fmt.Printf("build time:       %.3fs\n", buildSecs)
	fmt.Printf("index file:       %s (%d bytes, written in %.3fs)\n", *outFile, st.Size(), writeSecs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gkindex:", err)
	os.Exit(1)
}
